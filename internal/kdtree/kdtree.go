// Package kdtree implements the parallel spatial-median k-d tree used for
// k-NN queries, well-separated pair decomposition, and bichromatic closest
// pair (BCCP/BCCP*) computations (Sections 2.3 and 3 of the paper).
//
// Memory layout. All nodes of a tree live in one slab ([]Node) allocated up
// front and bump-allocated during the parallel build; children are addressed
// by int32 slab indices (resolved with Tree.LeftOf/Tree.RightOf), so a traversal
// never chases individually heap-allocated nodes. Every node's bounding box
// and center share a single contiguous float64 backing array (per-node
// [lo|hi|ctr] blocks), so building a tree performs O(1) heap allocations
// regardless of size. The build also physically permutes the points into
// kd-order — the tree owns a reordered copy of the input rows — which makes
// every leaf scan (k-NN, range, BCCP, Borůvka) run over contiguous memory.
//
// Index spaces. Node-level APIs (Node.Lo/Hi, Tree.Points, BCCP results, the
// Metric interface, RefreshComponents) work in internal kd-order positions,
// which index Tree.Pts directly. The point-query APIs (KNN, RangeQuery,
// RangeCount, CoreDistances, PairDist, AnnotateCoreDists) accept and return
// original input ids; Tree.Orig and Tree.Inv convert between the two spaces.
//
// Nodes carry the annotations the paper's algorithms need: bounding
// box/sphere, core-distance bounds for the HDBSCAN* well-separation test,
// and a per-round union-find component label used to filter connected pairs
// in O(1).
package kdtree

import (
	"math"
	"sync/atomic"

	"parclust/internal/abort"
	"parclust/internal/geometry"
	"parclust/internal/metric"
	"parclust/internal/parallel"
	"parclust/internal/unionfind"
)

// Node is a k-d tree node owning the kd-order positions [Lo, Hi) of its
// tree. Nodes are values inside the tree's slab; Left/Right are slab
// indices (negative for leaves) resolved through the owning Tree.
type Node struct {
	Lo, Hi      int32
	Left, Right int32 // slab indices of the children; -1 for leaves

	Box    geometry.Box // subslices of the tree's shared geometry backing
	Ctr    []float64    // bounding box center (shared backing)
	Radius float64      // bounding sphere radius (half box diagonal)

	// MDiam upper-bounds the tree-metric distance between any two points
	// of the node (the kernel's box self-diameter). Populated at build
	// time for non-Euclidean trees only; the L2 path uses Radius instead.
	MDiam float64

	// CDMin/CDMax bound the core distances of the node's points; they are
	// populated by Tree.AnnotateCoreDists and are zero otherwise.
	CDMin, CDMax float64

	// Comp is the union-find component shared by every point in the node,
	// or -1 if the points span multiple components. Refreshed per round by
	// Tree.RefreshComponents.
	Comp int32
}

// Size returns the number of points in the node.
func (n *Node) Size() int { return int(n.Hi - n.Lo) }

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.Left < 0 }

// Diam returns the diameter of the node's bounding sphere.
func (n *Node) Diam() float64 { return 2 * n.Radius }

// Tree is a spatial-median k-d tree over a point set.
type Tree struct {
	// Pts is the tree-owned copy of the input points, physically permuted
	// into kd-order: position p's coordinates are the contiguous row
	// Pts.Data[p*Dim:(p+1)*Dim], and every node covers a contiguous row
	// range. The caller's point set is never mutated.
	Pts geometry.Points

	// Orig maps kd-order positions to original input ids; Inv is its
	// inverse (Inv[Orig[p]] == p).
	Orig []int32
	Inv  []int32

	Root     *Node
	LeafSize int

	// M is the point-space metric queries run under (never nil; Build
	// installs L2). The splitting rule and node boxes are coordinate-based
	// and metric-independent; only query pruning and reported distances
	// depend on M.
	M metric.Metric

	// CoreDist[p] is the core distance of the point at kd-order position p
	// (set by AnnotateCoreDists).
	CoreDist []float64

	nodes  []Node // node slab; bump-allocated, never reallocated
	nalloc atomic.Int32
	geom   []float64 // per-node [box.Lo|box.Hi|ctr] blocks, one allocation
	pos    []int32   // identity permutation backing Points()

	l2     bool // M is plain Euclidean: queries take the squared-distance fast paths
	sqKern func(a, b []float64) float64

	// f32 is the opt-in float32 SoA representation (nil by default); when
	// set, queries take the lane-scan fast paths. See EnableFloat32.
	f32 *F32

	// af is the build-time cancellation flag (nil outside BuildMetricCancel);
	// t.build polls it once per node.
	af *abort.Flag
}

// buildGrain is the subproblem size below which build recursion is sequential.
const buildGrain = 2048

// Build constructs the tree in parallel under the Euclidean metric.
// leafSize <= 1 yields one point per leaf, which the WSPD construction
// requires.
func Build(pts geometry.Points, leafSize int) *Tree {
	return BuildMetric(pts, leafSize, metric.L2{})
}

// BuildMetric constructs the tree with queries running under metric m.
func BuildMetric(pts geometry.Points, leafSize int, m metric.Metric) *Tree {
	return BuildMetricCancel(pts, leafSize, m, nil)
}

// BuildMetricCancel is BuildMetric with a cooperative cancellation flag:
// the build polls af once per tree node and unwinds by panicking with
// abort.Signal{} when it is set (recovered at the stage-build boundary in
// internal/engine). af may be nil, which costs one branch per node.
func BuildMetricCancel(pts geometry.Points, leafSize int, m metric.Metric, af *abort.Flag) *Tree {
	if leafSize < 1 {
		leafSize = 1
	}
	n := pts.N
	t := &Tree{
		Pts:      geometry.Points{Data: append([]float64(nil), pts.Data...), N: n, Dim: pts.Dim},
		Orig:     make([]int32, n),
		Inv:      make([]int32, n),
		LeafSize: leafSize,
		M:        m,
		l2:       metric.IsL2(m),
		sqKern:   geometry.SqDistKernel(pts.Dim),
	}
	for i := range t.Orig {
		t.Orig[i] = int32(i)
	}
	if n > 0 {
		// A tree over n points has at most 2n-1 nodes (every split yields
		// two non-empty children), so one slab covers any build. Unused
		// slab tail pages are touched only by make's zeroing.
		maxNodes := 2*n - 1
		t.nodes = make([]Node, maxNodes)
		t.geom = make([]float64, maxNodes*3*pts.Dim)
		t.pos = make([]int32, n)
		for i := range t.pos {
			t.pos[i] = int32(i)
		}
		t.af = af
		t.Root = &t.nodes[t.build(0, int32(n))]
		t.af = nil
		parallel.For(n, 4096, func(i int) {
			t.Inv[t.Orig[i]] = int32(i)
		})
	}
	return t
}

// NodeAt returns the node at slab index i.
func (t *Tree) NodeAt(i int32) *Node { return &t.nodes[i] }

// NumNodes returns the number of nodes in the tree.
func (t *Tree) NumNodes() int { return int(t.nalloc.Load()) }

// LeftOf returns n's left child (n must not be a leaf).
func (t *Tree) LeftOf(n *Node) *Node { return &t.nodes[n.Left] }

// RightOf returns n's right child (n must not be a leaf).
func (t *Tree) RightOf(n *Node) *Node { return &t.nodes[n.Right] }

// IsL2 reports whether the tree's metric is plain Euclidean.
func (t *Tree) IsL2() bool { return t.l2 }

// SqKern returns the squared-Euclidean kernel monomorphized for the tree's
// dimension (selected once at build).
func (t *Tree) SqKern() func(a, b []float64) float64 { return t.sqKern }

// PairDist returns the tree-metric distance between the points with
// original ids i and j.
func (t *Tree) PairDist(i, j int32) float64 {
	pi, pj := int(t.Inv[i]), int(t.Inv[j])
	if t.l2 {
		return math.Sqrt(t.Pts.SqDist(pi, pj))
	}
	return t.M.Dist(t.Pts.At(pi), t.Pts.At(pj))
}

// newNode bump-allocates a node from the slab and wires its geometry block.
// The slab index order depends on the parallel schedule, but tree structure,
// node contents, and every query result do not.
func (t *Tree) newNode(lo, hi int32) int32 {
	idx := t.nalloc.Add(1) - 1
	nd := &t.nodes[idx]
	dim := t.Pts.Dim
	off := int(idx) * 3 * dim
	nd.Lo, nd.Hi = lo, hi
	nd.Left, nd.Right = -1, -1
	nd.Comp = -1
	nd.Box = geometry.Box{
		Lo: t.geom[off : off+dim : off+dim],
		Hi: t.geom[off+dim : off+2*dim : off+2*dim],
	}
	nd.Ctr = t.geom[off+2*dim : off+3*dim : off+3*dim]
	return idx
}

func (t *Tree) build(lo, hi int32) int32 {
	t.af.Check()
	idx := t.newNode(lo, hi)
	n := &t.nodes[idx]
	geometry.BoundingBoxRange(&n.Box, t.Pts, int(lo), int(hi))
	n.Box.Center(n.Ctr)
	n.Radius = n.Box.Radius()
	if !t.l2 {
		n.MDiam = t.M.BoxesUB(n.Box, n.Box)
	}
	if int(hi-lo) <= t.LeafSize {
		return idx
	}
	dim, width := n.Box.WidestDim()
	mid := t.partition(lo, hi, dim, width, n.Box)
	if int(hi-lo) > buildGrain {
		var l, r int32
		parallel.Do(
			func() { l = t.build(lo, mid) },
			func() { r = t.build(mid, hi) },
		)
		n.Left, n.Right = l, r
	} else {
		n.Left = t.build(lo, mid)
		n.Right = t.build(mid, hi)
	}
	return idx
}

// partition splits the rows [lo, hi) around the spatial median of dim,
// physically swapping point rows (and their Orig labels) so each side ends
// up contiguous. Degenerate splits (all points on one side, e.g. duplicate
// coordinates) fall back to an index-median split so recursion always
// terminates.
func (t *Tree) partition(lo, hi int32, dim int, width float64, box geometry.Box) int32 {
	if width <= 0 {
		return (lo + hi) / 2
	}
	pivot := (box.Lo[dim] + box.Hi[dim]) / 2
	i, j := lo, hi-1
	for i <= j {
		for i <= j && t.coord(i, dim) < pivot {
			i++
		}
		for i <= j && t.coord(j, dim) >= pivot {
			j--
		}
		if i < j {
			t.swapRows(i, j)
			i++
			j--
		}
	}
	if i == lo || i == hi { // degenerate: spatial median separates nothing
		return (lo + hi) / 2
	}
	return i
}

func (t *Tree) swapRows(i, j int32) {
	d := t.Pts.Dim
	a := t.Pts.Data[int(i)*d : int(i)*d+d : int(i)*d+d]
	b := t.Pts.Data[int(j)*d : int(j)*d+d : int(j)*d+d]
	for k := 0; k < d; k++ {
		a[k], b[k] = b[k], a[k]
	}
	t.Orig[i], t.Orig[j] = t.Orig[j], t.Orig[i]
}

func (t *Tree) coord(p int32, dim int) float64 {
	return t.Pts.Data[int(p)*t.Pts.Dim+dim]
}

// Points returns the kd-order positions owned by node n (the contiguous
// range [n.Lo, n.Hi), indexing Tree.Pts). Map through Tree.Orig to recover
// original input ids.
func (t *Tree) Points(n *Node) []int32 { return t.pos[n.Lo:n.Hi] }

// AnnotateCoreDists stores the per-point core distances and fills each
// node's CDMin/CDMax bottom-up (used by the HDBSCAN* well-separation
// predicate). cd is in original id order, as returned by CoreDistances;
// the tree keeps the kd-order copy in t.CoreDist.
func (t *Tree) AnnotateCoreDists(cd []float64) {
	if cap(t.CoreDist) < t.Pts.N {
		t.CoreDist = make([]float64, t.Pts.N)
	}
	t.CoreDist = t.CoreDist[:t.Pts.N]
	parallel.For(t.Pts.N, 4096, func(p int) {
		t.CoreDist[p] = cd[t.Orig[p]]
	})
	if t.Root != nil {
		t.annotateCD(t.Root)
	}
}

// annotateCD keeps the parallel fork in a separate function
// (annotateCDPar) so the sequential recursion allocates no closure cells.
func (t *Tree) annotateCD(n *Node) (lo, hi float64) {
	if n.IsLeaf() {
		lo, hi = math.Inf(1), math.Inf(-1)
		for p := n.Lo; p < n.Hi; p++ {
			c := t.CoreDist[p]
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		n.CDMin, n.CDMax = lo, hi
		return lo, hi
	}
	if n.Size() > buildGrain {
		return t.annotateCDPar(n)
	}
	llo, lhi := t.annotateCD(t.LeftOf(n))
	rlo, rhi := t.annotateCD(t.RightOf(n))
	n.CDMin, n.CDMax = math.Min(llo, rlo), math.Max(lhi, rhi)
	return n.CDMin, n.CDMax
}

func (t *Tree) annotateCDPar(n *Node) (lo, hi float64) {
	var llo, lhi, rlo, rhi float64
	parallel.Do(
		func() { llo, lhi = t.annotateCD(t.LeftOf(n)) },
		func() { rlo, rhi = t.annotateCD(t.RightOf(n)) },
	)
	n.CDMin, n.CDMax = math.Min(llo, rlo), math.Max(lhi, rhi)
	return n.CDMin, n.CDMax
}

// RefreshComponents recomputes every node's Comp label from the union-find
// structure: the common component of the node's points, or -1 if mixed.
// One O(n) pass per Kruskal round (the paper's f_diff filter support).
// The union-find runs over kd-order positions; it returns the per-position
// component labels.
func (t *Tree) RefreshComponents(uf *unionfind.UF) []int32 {
	if t.Root == nil {
		return nil
	}
	return t.RefreshComponentsInto(uf, make([]int32, t.Pts.N))
}

// RefreshComponentsInto is RefreshComponents writing the labels into comp
// (len comp must be the point count), allocating nothing.
func (t *Tree) RefreshComponentsInto(uf *unionfind.UF, comp []int32) []int32 {
	if t.Root == nil {
		return comp
	}
	for i := range comp {
		comp[i] = uf.Find(int32(i))
	}
	t.refreshComp(t.Root, comp)
	return comp
}

// refreshComp keeps the parallel fork in a separate function
// (refreshCompPar) so the sequential recursion — the per-round hot path —
// allocates no closure cells.
func (t *Tree) refreshComp(n *Node, comp []int32) int32 {
	if n.IsLeaf() {
		c := comp[n.Lo]
		for p := n.Lo + 1; p < n.Hi; p++ {
			if comp[p] != c {
				c = -1
				break
			}
		}
		n.Comp = c
		return c
	}
	if n.Size() > buildGrain {
		return t.refreshCompPar(n, comp)
	}
	cl := t.refreshComp(t.LeftOf(n), comp)
	cr := t.refreshComp(t.RightOf(n), comp)
	if cl >= 0 && cl == cr {
		n.Comp = cl
	} else {
		n.Comp = -1
	}
	return n.Comp
}

func (t *Tree) refreshCompPar(n *Node, comp []int32) int32 {
	var cl, cr int32
	parallel.Do(
		func() { cl = t.refreshComp(t.LeftOf(n), comp) },
		func() { cr = t.refreshComp(t.RightOf(n), comp) },
	)
	if cl >= 0 && cl == cr {
		n.Comp = cl
	} else {
		n.Comp = -1
	}
	return n.Comp
}

// SqCtrDist returns the squared distance between the bounding-sphere
// centers of a and b — the sqrt-free ingredient of sphere-gap tests.
func SqCtrDist(a, b *Node) float64 {
	var s float64
	for k := range a.Ctr {
		d := a.Ctr[k] - b.Ctr[k]
		s += d * d
	}
	return s
}

// SphereDist returns the paper's d(A,B): the minimum distance between the
// bounding spheres of a and b (clamped at zero).
func SphereDist(a, b *Node) float64 {
	d := math.Sqrt(SqCtrDist(a, b)) - a.Radius - b.Radius
	if d < 0 {
		return 0
	}
	return d
}

// BoxDist returns the minimum distance between the bounding boxes of a and b,
// a tighter (and descent-monotone) lower bound on point distances.
func BoxDist(a, b *Node) float64 {
	return math.Sqrt(geometry.SqDistBoxes(a.Box, b.Box))
}

// BoxMaxDist returns the maximum distance between the bounding boxes of a
// and b, an upper bound on point distances.
func BoxMaxDist(a, b *Node) float64 {
	return math.Sqrt(geometry.SqMaxDistBoxes(a.Box, b.Box))
}

// Package kdtree implements the parallel spatial-median k-d tree used for
// k-NN queries, well-separated pair decomposition, and bichromatic closest
// pair (BCCP/BCCP*) computations (Sections 2.3 and 3 of the paper).
//
// The tree stores a permutation of point indices; every node owns a
// contiguous subrange, so no per-node point copies are made. Nodes carry the
// annotations the paper's algorithms need: bounding box/sphere, core-distance
// bounds for the HDBSCAN* well-separation test, and a per-round union-find
// component label used to filter connected pairs in O(1).
package kdtree

import (
	"math"

	"parclust/internal/geometry"
	"parclust/internal/metric"
	"parclust/internal/parallel"
	"parclust/internal/unionfind"
)

// Node is a k-d tree node owning points Idx[Lo:Hi] of its tree.
type Node struct {
	Lo, Hi      int32
	Left, Right *Node
	Box         geometry.Box
	Ctr         []float64 // bounding box center
	Radius      float64   // bounding sphere radius (half box diagonal)

	// MDiam upper-bounds the tree-metric distance between any two points
	// of the node (the kernel's box self-diameter). Populated at build
	// time for non-Euclidean trees only; the L2 path uses Radius instead.
	MDiam float64

	// CDMin/CDMax bound the core distances of the node's points; they are
	// populated by Tree.AnnotateCoreDists and are zero otherwise.
	CDMin, CDMax float64

	// Comp is the union-find component shared by every point in the node,
	// or -1 if the points span multiple components. Refreshed per round by
	// Tree.RefreshComponents.
	Comp int32
}

// Size returns the number of points in the node.
func (n *Node) Size() int { return int(n.Hi - n.Lo) }

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.Left == nil }

// Diam returns the diameter of the node's bounding sphere.
func (n *Node) Diam() float64 { return 2 * n.Radius }

// Tree is a spatial-median k-d tree over a point set.
type Tree struct {
	Pts      geometry.Points
	Idx      []int32 // permutation of [0, n)
	Root     *Node
	LeafSize int

	// M is the point-space metric queries run under (never nil; Build
	// installs L2). The splitting rule and node boxes are coordinate-based
	// and metric-independent; only query pruning and reported distances
	// depend on M.
	M metric.Metric

	// CoreDist[i] is the core distance of point i (set by AnnotateCoreDists).
	CoreDist []float64

	l2     bool // M is plain Euclidean: queries take the squared-distance fast paths
	sqKern func(a, b []float64) float64
}

// buildGrain is the subproblem size below which build recursion is sequential.
const buildGrain = 2048

// Build constructs the tree in parallel under the Euclidean metric.
// leafSize <= 1 yields one point per leaf, which the WSPD construction
// requires.
func Build(pts geometry.Points, leafSize int) *Tree {
	return BuildMetric(pts, leafSize, metric.L2{})
}

// BuildMetric constructs the tree with queries running under metric m.
func BuildMetric(pts geometry.Points, leafSize int, m metric.Metric) *Tree {
	if leafSize < 1 {
		leafSize = 1
	}
	t := &Tree{
		Pts:      pts,
		Idx:      make([]int32, pts.N),
		LeafSize: leafSize,
		M:        m,
		l2:       metric.IsL2(m),
		sqKern:   geometry.SqDistKernel(pts.Dim),
	}
	for i := range t.Idx {
		t.Idx[i] = int32(i)
	}
	if pts.N > 0 {
		t.Root = t.build(0, int32(pts.N))
	}
	return t
}

// IsL2 reports whether the tree's metric is plain Euclidean.
func (t *Tree) IsL2() bool { return t.l2 }

// PairDist returns the tree-metric distance between points i and j.
func (t *Tree) PairDist(i, j int32) float64 {
	if t.l2 {
		return math.Sqrt(t.Pts.SqDist(int(i), int(j)))
	}
	return t.M.Dist(t.Pts.At(int(i)), t.Pts.At(int(j)))
}

func (t *Tree) build(lo, hi int32) *Node {
	n := &Node{Lo: lo, Hi: hi, Comp: -1}
	n.Box = geometry.BoundingBox(t.Pts, t.Idx[lo:hi])
	n.Ctr = n.Box.Center(make([]float64, t.Pts.Dim))
	n.Radius = n.Box.Radius()
	if !t.l2 {
		n.MDiam = t.M.BoxesUB(n.Box, n.Box)
	}
	if int(hi-lo) <= t.LeafSize {
		return n
	}
	dim, width := n.Box.WidestDim()
	mid := t.partition(lo, hi, dim, width, n.Box)
	if int(hi-lo) > buildGrain {
		parallel.Do(
			func() { n.Left = t.build(lo, mid) },
			func() { n.Right = t.build(mid, hi) },
		)
	} else {
		n.Left = t.build(lo, mid)
		n.Right = t.build(mid, hi)
	}
	return n
}

// partition splits Idx[lo:hi] around the spatial median of dim. Degenerate
// splits (all points on one side, e.g. duplicate coordinates) fall back to an
// index-median split so recursion always terminates.
func (t *Tree) partition(lo, hi int32, dim int, width float64, box geometry.Box) int32 {
	if width <= 0 {
		return (lo + hi) / 2
	}
	pivot := (box.Lo[dim] + box.Hi[dim]) / 2
	i, j := lo, hi-1
	for i <= j {
		for i <= j && t.coord(t.Idx[i], dim) < pivot {
			i++
		}
		for i <= j && t.coord(t.Idx[j], dim) >= pivot {
			j--
		}
		if i < j {
			t.Idx[i], t.Idx[j] = t.Idx[j], t.Idx[i]
			i++
			j--
		}
	}
	if i == lo || i == hi { // degenerate: spatial median separates nothing
		return (lo + hi) / 2
	}
	return i
}

func (t *Tree) coord(p int32, dim int) float64 {
	return t.Pts.Data[int(p)*t.Pts.Dim+dim]
}

// Points returns the point indices owned by node n.
func (t *Tree) Points(n *Node) []int32 { return t.Idx[n.Lo:n.Hi] }

// AnnotateCoreDists stores the per-point core distances and fills each node's
// CDMin/CDMax bottom-up (used by the HDBSCAN* well-separation predicate).
func (t *Tree) AnnotateCoreDists(cd []float64) {
	t.CoreDist = cd
	if t.Root != nil {
		t.annotateCD(t.Root)
	}
}

func (t *Tree) annotateCD(n *Node) (lo, hi float64) {
	if n.IsLeaf() {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, p := range t.Points(n) {
			c := t.CoreDist[p]
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		n.CDMin, n.CDMax = lo, hi
		return lo, hi
	}
	var llo, lhi, rlo, rhi float64
	if n.Size() > buildGrain {
		parallel.Do(
			func() { llo, lhi = t.annotateCD(n.Left) },
			func() { rlo, rhi = t.annotateCD(n.Right) },
		)
	} else {
		llo, lhi = t.annotateCD(n.Left)
		rlo, rhi = t.annotateCD(n.Right)
	}
	n.CDMin, n.CDMax = math.Min(llo, rlo), math.Max(lhi, rhi)
	return n.CDMin, n.CDMax
}

// RefreshComponents recomputes every node's Comp label from the union-find
// structure: the common component of the node's points, or -1 if mixed.
// One O(n) pass per Kruskal round (the paper's f_diff filter support).
// It returns the per-point component labels.
func (t *Tree) RefreshComponents(uf *unionfind.UF) []int32 {
	if t.Root == nil {
		return nil
	}
	comp := make([]int32, t.Pts.N)
	for i := range comp {
		comp[i] = uf.Find(int32(i))
	}
	t.refreshComp(t.Root, comp)
	return comp
}

func (t *Tree) refreshComp(n *Node, comp []int32) int32 {
	if n.IsLeaf() {
		pts := t.Points(n)
		c := comp[pts[0]]
		for _, p := range pts[1:] {
			if comp[p] != c {
				c = -1
				break
			}
		}
		n.Comp = c
		return c
	}
	var cl, cr int32
	if n.Size() > buildGrain {
		parallel.Do(
			func() { cl = t.refreshComp(n.Left, comp) },
			func() { cr = t.refreshComp(n.Right, comp) },
		)
	} else {
		cl = t.refreshComp(n.Left, comp)
		cr = t.refreshComp(n.Right, comp)
	}
	if cl >= 0 && cl == cr {
		n.Comp = cl
	} else {
		n.Comp = -1
	}
	return n.Comp
}

// SphereDist returns the paper's d(A,B): the minimum distance between the
// bounding spheres of a and b (clamped at zero).
func SphereDist(a, b *Node) float64 {
	var s float64
	for k := range a.Ctr {
		d := a.Ctr[k] - b.Ctr[k]
		s += d * d
	}
	d := math.Sqrt(s) - a.Radius - b.Radius
	if d < 0 {
		return 0
	}
	return d
}

// BoxDist returns the minimum distance between the bounding boxes of a and b,
// a tighter (and descent-monotone) lower bound on point distances.
func BoxDist(a, b *Node) float64 {
	return math.Sqrt(geometry.SqDistBoxes(a.Box, b.Box))
}

// BoxMaxDist returns the maximum distance between the bounding boxes of a
// and b, an upper bound on point distances.
func BoxMaxDist(a, b *Node) float64 {
	return math.Sqrt(geometry.SqMaxDistBoxes(a.Box, b.Box))
}

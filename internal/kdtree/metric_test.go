package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"parclust/internal/geometry"
	"parclust/internal/metric"
)

// metricPoints draws query-friendly points, unit-normalized for Angular so
// the kernel's precondition holds.
func metricPoints(t *testing.T, n, dim int, seed int64, m metric.Metric) geometry.Points {
	t.Helper()
	pts := randPoints(n, dim, seed)
	if _, ok := m.(metric.Angular); ok {
		norm, err := metric.NormalizeRows(pts)
		if err != nil {
			t.Fatal(err)
		}
		return norm
	}
	return pts
}

// TestKNNMetricMatchesBruteForce checks the metric-dispatched k-NN
// traversal against a full sort of the distance row, for every kernel.
func TestKNNMetricMatchesBruteForce(t *testing.T) {
	for _, m := range metric.All() {
		for _, dim := range []int{2, 3, 5} {
			pts := metricPoints(t, 200, dim, int64(dim)*7+1, m)
			tr := BuildMetric(pts, 1, m)
			for _, q := range []int32{0, 57, 199} {
				for _, k := range []int{1, 4, 16} {
					got := tr.KNN(q, k)
					type cand struct {
						idx int32
						d   float64
					}
					all := make([]cand, pts.N)
					for j := 0; j < pts.N; j++ {
						all[j] = cand{int32(j), m.Dist(pts.At(int(q)), pts.At(j))}
					}
					sort.Slice(all, func(a, b int) bool {
						if all[a].d != all[b].d {
							return all[a].d < all[b].d
						}
						return all[a].idx < all[b].idx
					})
					if len(got) != k {
						t.Fatalf("%s dim=%d q=%d k=%d: got %d neighbors", m.Name(), dim, q, k, len(got))
					}
					for i, nb := range got {
						if math.Abs(nb.Dist-all[i].d) > 1e-12*(1+all[i].d) {
							t.Fatalf("%s dim=%d q=%d k=%d: neighbor %d dist %v, want %v",
								m.Name(), dim, q, k, i, nb.Dist, all[i].d)
						}
					}
				}
			}
		}
	}
}

// TestRangeMetricMatchesBruteForce checks RangeQuery and RangeCount under
// every kernel against a linear scan, at radii spanning empty to full.
func TestRangeMetricMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, m := range metric.All() {
		pts := metricPoints(t, 300, 3, 23, m)
		tr := BuildMetric(pts, 8, m)
		scale := 1.0
		if _, ok := m.(metric.Angular); ok {
			scale = 0.01 // angular distances live in [0, pi]
		}
		for trial := 0; trial < 20; trial++ {
			q := int32(rng.Intn(pts.N))
			r := rng.Float64() * 60 * scale
			want := 0
			inBall := map[int32]bool{}
			for j := 0; j < pts.N; j++ {
				if m.Dist(pts.At(int(q)), pts.At(j)) <= r {
					want++
					inBall[int32(j)] = true
				}
			}
			if got := tr.RangeCount(q, r); got != want {
				t.Fatalf("%s: RangeCount(%d, %v) = %d, want %d", m.Name(), q, r, got, want)
			}
			res := tr.RangeQuery(q, r)
			if len(res) != want {
				t.Fatalf("%s: RangeQuery(%d, %v) returned %d points, want %d", m.Name(), q, r, len(res), want)
			}
			for _, p := range res {
				if !inBall[p] {
					t.Fatalf("%s: RangeQuery returned point %d outside the ball", m.Name(), p)
				}
			}
		}
	}
}

// TestBCCPMetricMatchesBruteForce cross-checks BCCP under PointDist (the
// generic interface path) and Euclidean (the monomorphized fast path)
// against exhaustive pair enumeration between two subtrees.
func TestBCCPMetricMatchesBruteForce(t *testing.T) {
	for _, m := range metric.All() {
		pts := metricPoints(t, 128, 3, 77, m)
		tr := BuildMetric(pts, 1, m)
		var em Metric
		if metric.IsL2(m) {
			em = NewEuclidean(tr)
		} else {
			em = NewPointDist(tr)
		}
		a, b := tr.LeftOf(tr.Root), tr.RightOf(tr.Root)
		got := BCCP(tr, em, a, b)
		want := math.Inf(1)
		for _, p := range tr.Points(a) {
			for _, q := range tr.Points(b) {
				if d := m.Dist(tr.Pts.At(int(p)), tr.Pts.At(int(q))); d < want {
					want = d
				}
			}
		}
		if math.Abs(got.W-want) > 1e-12*(1+want) {
			t.Fatalf("%s: BCCP weight %v, brute force %v", m.Name(), got.W, want)
		}
		if d := m.Dist(tr.Pts.At(int(got.U)), tr.Pts.At(int(got.V))); math.Abs(d-got.W) > 1e-12*(1+got.W) {
			t.Fatalf("%s: BCCP pair (%d,%d) realizes %v, reported %v", m.Name(), got.U, got.V, d, got.W)
		}
	}
}

// TestPairDistMatchesKernel pins Tree.PairDist to the kernel on both the
// L2 fast path and the generic path.
func TestPairDistMatchesKernel(t *testing.T) {
	for _, m := range metric.All() {
		pts := metricPoints(t, 50, 4, 3, m)
		tr := BuildMetric(pts, 4, m)
		for i := int32(0); i < 10; i++ {
			for j := int32(40); j < 50; j++ {
				want := m.Dist(pts.At(int(i)), pts.At(int(j)))
				if got := tr.PairDist(i, j); got != want {
					t.Fatalf("%s: PairDist(%d,%d) = %v, kernel %v", m.Name(), i, j, got, want)
				}
			}
		}
	}
}

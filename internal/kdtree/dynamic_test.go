package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"parclust/internal/metric"
)

// Tests for the tombstone-aware live traversals backing the engine's
// dynamic layer. Every assertion is against a brute-force scan over the
// surviving points using the metric's own kernel, for every registered
// kernel, with and without tombstones.

// liveBrute returns (idx, dist) for every non-tombstoned point, sorted by
// (dist, original id).
func liveBrute(pts pointsLike, m metric.Metric, qc []float64, tomb []bool) []Neighbor {
	var out []Neighbor
	for j := 0; j < pts.n(); j++ {
		if tomb != nil && tomb[j] {
			continue
		}
		out = append(out, Neighbor{Idx: int32(j), Dist: m.Dist(qc, pts.at(j))})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].Idx < out[b].Idx
	})
	return out
}

// pointsLike lets liveBrute read geometry.Points without importing it
// twice under a different name.
type pointsLike struct {
	data []float64
	num  int
	dim  int
}

func (p pointsLike) n() int             { return p.num }
func (p pointsLike) at(i int) []float64 { return p.data[i*p.dim : (i+1)*p.dim] }

func TestKNNLiveMatchesBruteForce(t *testing.T) {
	for _, m := range metric.All() {
		pts := metricPoints(t, 240, 3, 31, m)
		tr := BuildMetric(pts, 8, m)
		pl := pointsLike{pts.Data, pts.N, pts.Dim}
		tombs := [][]bool{nil, make([]bool, pts.N)}
		for j := 0; j < pts.N; j += 3 {
			tombs[1][j] = true
		}
		for _, tomb := range tombs {
			for _, q := range []int{1, 77, 239} {
				qc := pts.At(q)
				want := liveBrute(pl, m, qc, tomb)
				for _, k := range []int{1, 5, 17} {
					var ws KNNWorkspace
					got := tr.KNNLiveInto(qc, k, tomb, &ws)
					wantK := k
					if wantK > len(want) {
						wantK = len(want)
					}
					if len(got) != wantK {
						t.Fatalf("%s q=%d k=%d tomb=%v: got %d neighbors, want %d",
							m.Name(), q, k, tomb != nil, len(got), wantK)
					}
					for i, nb := range got {
						if tomb != nil && tomb[nb.Idx] {
							t.Fatalf("%s q=%d k=%d: neighbor %d is tombstoned id %d",
								m.Name(), q, k, i, nb.Idx)
						}
						if math.Abs(nb.Dist-want[i].Dist) > 1e-12*(1+want[i].Dist) {
							t.Fatalf("%s q=%d k=%d tomb=%v: neighbor %d dist %v, want %v",
								m.Name(), q, k, tomb != nil, i, nb.Dist, want[i].Dist)
						}
					}
				}
			}
		}
	}
}

func TestKNNLiveFewerThanK(t *testing.T) {
	pts := randPoints(20, 2, 9)
	tr := Build(pts, 4)
	tomb := make([]bool, pts.N)
	for j := 0; j < pts.N; j++ {
		tomb[j] = j >= 3 // only ids 0,1,2 survive
	}
	var ws KNNWorkspace
	got := tr.KNNLiveInto(pts.At(0), 10, tomb, &ws)
	if len(got) != 3 {
		t.Fatalf("got %d neighbors from 3 live points, want 3", len(got))
	}
	for _, nb := range got {
		if nb.Idx > 2 {
			t.Fatalf("tombstoned id %d in result", nb.Idx)
		}
	}
}

func TestRangeLiveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, m := range metric.All() {
		pts := metricPoints(t, 300, 3, 47, m)
		tr := BuildMetric(pts, 8, m)
		pl := pointsLike{pts.Data, pts.N, pts.Dim}
		tomb := make([]bool, pts.N)
		for j := 0; j < pts.N; j += 4 {
			tomb[j] = true
		}
		for _, tb := range [][]bool{nil, tomb} {
			for trial := 0; trial < 12; trial++ {
				q := rng.Intn(pts.N)
				qc := pts.At(q)
				// Radii from the brute distance distribution so the result
				// set spans near-empty to most-of-the-tree — but taken at
				// midpoints between consecutive distances, never exactly on
				// one: the l2 traversal compares in squared space and an
				// exact-boundary radius is rounding-sensitive.
				brute := liveBrute(pl, m, qc, tb)
				ri := rng.Intn(len(brute))
				var r float64
				if ri+1 < len(brute) {
					r = (brute[ri].Dist + brute[ri+1].Dist) / 2
				} else {
					r = brute[ri].Dist + 1
				}
				var want []int32
				cnt := 0
				for _, nb := range brute {
					if nb.Dist <= r {
						want = append(want, nb.Idx)
						cnt++
					}
				}
				sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })

				got := tr.RangeQueryLiveAppend(qc, r, tb, nil)
				sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
				if len(got) != len(want) {
					t.Fatalf("%s q=%d r=%v tomb=%v: got %d ids, want %d",
						m.Name(), q, r, tb != nil, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s q=%d r=%v tomb=%v: id[%d]=%d, want %d",
							m.Name(), q, r, tb != nil, i, got[i], want[i])
					}
				}
				if n := tr.RangeCountLive(qc, r, tb); n != cnt {
					t.Fatalf("%s q=%d r=%v tomb=%v: RangeCountLive=%d, want %d",
						m.Name(), q, r, tb != nil, n, cnt)
				}
			}
		}
	}
}

// TestRangeCountLiveWholesaleShortcut pins that the nil-tomb path still
// takes the whole-subtree count shortcut (the radius swallows the tree) and
// agrees with a tombstoned recount.
func TestRangeCountLiveWholesaleShortcut(t *testing.T) {
	pts := randPoints(500, 2, 3)
	tr := Build(pts, 8)
	qc := pts.At(0)
	const huge = 1e9
	if n := tr.RangeCountLive(qc, huge, nil); n != pts.N {
		t.Fatalf("all-points radius counted %d, want %d", n, pts.N)
	}
	tomb := make([]bool, pts.N)
	tomb[7], tomb[123], tomb[499] = true, true, true
	if n := tr.RangeCountLive(qc, huge, tomb); n != pts.N-3 {
		t.Fatalf("all-points radius with 3 tombstones counted %d, want %d", n, pts.N-3)
	}
}

func TestDistCoordsMatchesKernel(t *testing.T) {
	for _, m := range metric.All() {
		pts := metricPoints(t, 50, 4, 17, m)
		tr := BuildMetric(pts, 4, m)
		for _, pair := range [][2]int{{0, 1}, {10, 49}, {25, 25}} {
			a, b := pts.At(pair[0]), pts.At(pair[1])
			got := tr.DistCoords(a, b)
			want := m.Dist(a, b)
			if math.Abs(got-want) > 1e-12*(1+want) {
				t.Fatalf("%s DistCoords(%d,%d)=%v, want %v", m.Name(), pair[0], pair[1], got, want)
			}
		}
	}
}

package parclust

// Adversarial-input tests: degenerate geometry that historically breaks
// spatial data structures — duplicate points, collinear points, grids with
// massive tie groups, exponentially spaced points, single clusters with one
// far outlier. Every pipeline must stay correct (validated against dense
// oracles where affordable) rather than merely not crash.

import (
	"math"
	"testing"

	"parclust/internal/mst"
)

func oracleEMSTWeight(pts Points) float64 {
	return mst.TotalWeight(mst.PrimDense(pts.N, func(i, j int32) float64 {
		return pts.Dist(int(i), int(j))
	}))
}

func checkAllEMST(t *testing.T, pts Points, label string) {
	t.Helper()
	want := oracleEMSTWeight(pts)
	algos := []EMSTAlgorithm{EMSTMemoGFK, EMSTGFK, EMSTNaive, EMSTBoruvka, EMSTWSPDBoruvka}
	if pts.Dim == 2 {
		algos = append(algos, EMSTDelaunay2D)
	}
	for _, algo := range algos {
		edges, err := EMSTWithStats(pts, algo, nil)
		if err != nil {
			t.Fatalf("%s/%v: %v", label, algo, err)
		}
		if len(edges) != pts.N-1 {
			t.Fatalf("%s/%v: %d edges", label, algo, len(edges))
		}
		if got := mst.TotalWeight(edges); math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("%s/%v: weight %v, want %v", label, algo, got, want)
		}
	}
}

func TestAdversarialAllDuplicates(t *testing.T) {
	pts := NewPoints(100, 2) // all at the origin
	checkAllEMST(t, pts, "duplicates")
	h, err := HDBSCAN(pts, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.TotalWeight() != 0 {
		t.Fatalf("duplicate-point hierarchy weight %v", h.TotalWeight())
	}
	if c := h.ClustersAt(0); c.NumClusters != 1 {
		t.Fatalf("duplicates at eps=0: %d clusters", c.NumClusters)
	}
}

func TestAdversarialCollinear(t *testing.T) {
	n := 300
	pts := NewPoints(n, 2)
	for i := 0; i < n; i++ {
		pts.Data[2*i] = float64(i) * 1.5
	}
	checkAllEMST(t, pts, "collinear")
	h, err := HDBSCAN(pts, 5)
	if err != nil {
		t.Fatal(err)
	}
	plot := h.ReachabilityPlot()
	// On a line starting at the endpoint, the reachability plot visits the
	// points monotonically.
	for i := 1; i < len(plot); i++ {
		if plot[i].Idx != int32(i) {
			t.Fatalf("collinear plot out of order at %d (got %d)", i, plot[i].Idx)
		}
	}
}

func TestAdversarialGridTies(t *testing.T) {
	// 20x20 integer grid: every MST edge has weight exactly 1 and there are
	// thousands of tied candidate edges.
	side := 20
	pts := NewPoints(side*side, 2)
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			pts.Data[2*(i*side+j)] = float64(i)
			pts.Data[2*(i*side+j)+1] = float64(j)
		}
	}
	checkAllEMST(t, pts, "grid")
	// Dendrogram determinism under massive ties: two builds agree.
	h1, _ := HDBSCAN(pts, 4)
	h2, _ := HDBSCAN(pts, 4)
	p1, p2 := h1.ReachabilityPlot(), h2.ReachabilityPlot()
	for i := range p1 {
		if p1[i].Idx != p2[i].Idx {
			t.Fatalf("grid plot nondeterministic at %d", i)
		}
	}
}

func TestAdversarialExponentialSpacing(t *testing.T) {
	// Exponentially growing gaps: the dendrogram is a pure path (the
	// worst case called out in Section 4.2's warm-up analysis).
	n := 50
	pts := NewPoints(n, 1)
	x := 0.0
	for i := 0; i < n; i++ {
		pts.Data[i] = x
		x += math.Pow(1.7, float64(i))
	}
	checkAllEMST(t, pts, "exponential")
	h, err := SingleLinkage(pts)
	if err != nil {
		t.Fatal(err)
	}
	d := h.Dendrogram()
	// The dendrogram of a path with increasing weights is a caterpillar:
	// every internal node has at least one leaf child.
	for x := d.N; x < d.N+d.NumInternal(); x++ {
		l, r := d.Children(int32(x))
		if !d.IsLeaf(l) && !d.IsLeaf(r) {
			t.Fatal("expected caterpillar dendrogram for exponential spacing")
		}
	}
}

func TestAdversarialOutlier(t *testing.T) {
	// A tight cluster plus one extreme outlier: the outlier must be noise
	// at any reasonable radius and its MST edge must be the heaviest.
	n := 200
	pts := GenerateGaussianMixture(n-1, 3, 1, 3)
	all := NewPoints(n, 3)
	copy(all.Data, pts.Data)
	all.Data[(n-1)*3] = 1e7
	h, err := HDBSCAN(all, 10)
	if err != nil {
		t.Fatal(err)
	}
	heaviest := h.MST[len(h.MST)-1]
	if heaviest.U != int32(n-1) && heaviest.V != int32(n-1) {
		t.Fatal("heaviest MST edge does not touch the outlier")
	}
	c := h.ClustersAt(1e6)
	if c.Labels[n-1] != -1 {
		t.Fatal("outlier not classified as noise")
	}
}

func TestAdversarialTwoPoints(t *testing.T) {
	pts := PointsFromSlices([][]float64{{0, 0}, {3, 4}})
	edges, err := EMST(pts)
	if err != nil || len(edges) != 1 || math.Abs(edges[0].W-5) > 1e-12 {
		t.Fatalf("two-point EMST wrong: %v %v", edges, err)
	}
	h, err := HDBSCAN(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.TotalWeight()-5) > 1e-12 {
		t.Fatalf("two-point hierarchy weight %v", h.TotalWeight())
	}
}

func TestAdversarialNonFiniteRejected(t *testing.T) {
	pts := NewPoints(10, 2)
	pts.Data[7] = math.NaN()
	if _, err := EMST(pts); err == nil {
		t.Fatal("NaN coordinate accepted")
	}
	pts.Data[7] = math.Inf(1)
	if _, err := HDBSCAN(pts, 2); err == nil {
		t.Fatal("Inf coordinate accepted")
	}
}
